package sim

import (
	"testing"

	"repro/internal/isa"
)

// collect captures the first n instructions of a program walk.
func collect(prog *isa.Program, in isa.Input, n int) []isa.Instr {
	c := &collectConsumer{want: n}
	prog.Walk(in, c)
	return c.instrs
}

type collectConsumer struct {
	instrs []isa.Instr
	want   int
}

func (c *collectConsumer) Instr(ins *isa.Instr) bool {
	c.instrs = append(c.instrs, *ins)
	return len(c.instrs) < c.want
}

func (c *collectConsumer) Marker(isa.Marker) bool { return true }

// TestSteadyStateAllocFree locks in the hot-path invariant: once the
// machine's issue queues have grown to capacity, simulating an
// instruction performs zero heap allocations. A regression here turns
// every sweep into GC churn, so it is tier-1.
func TestSteadyStateAllocFree(t *testing.T) {
	b := isa.NewBuilder("allocfree")
	main := b.Subroutine("main")
	b.SetBody(main, b.Block(isa.Balanced, 100_000))
	prog := b.Finish(main)
	instrs := collect(prog, isa.Input{Name: "train"}, 80_000)

	m := New(DefaultConfig())
	// Warm up: grow the issue queues and ring state to steady state.
	next := 0
	for ; next < 50_000; next++ {
		m.Instr(&instrs[next])
	}
	const batch = 2_000
	got := testing.AllocsPerRun(5, func() {
		for j := 0; j < batch; j++ {
			m.Instr(&instrs[next])
			next++
		}
	})
	if got > 0 {
		t.Fatalf("steady-state Machine loop allocates %.1f times per %d instructions; want 0", got, batch)
	}
}

// TestSetTracerTypedNil verifies that detaching observers with a typed
// nil restores the no-dispatch fast path instead of leaving a non-nil
// interface wrapping a nil pointer (which would panic on first use).
func TestSetTracerTypedNil(t *testing.T) {
	m := New(DefaultConfig())
	var tr *panicTracer // typed nil
	var ms *panicSink   // typed nil
	m.SetTracer(tr)
	m.SetMarkerSink(ms)

	b := isa.NewBuilder("typednil")
	main := b.Subroutine("main")
	b.SetBody(main, b.Block(isa.Balanced, 100))
	prog := b.Finish(main)
	// Would panic via the typed-nil interface if the fast path were not
	// restored.
	prog.Walk(isa.Input{Name: "train"}, &isa.CountingConsumer{Inner: m, Budget: 100})
	if m.Seq() != 100 {
		t.Fatalf("simulated %d instructions, want 100", m.Seq())
	}

	// Attach-then-detach with untyped nil behaves the same.
	m2 := New(DefaultConfig())
	m2.SetTracer(&countTracer{})
	m2.SetTracer(nil)
	m2.SetMarkerSink(&countSink{})
	m2.SetMarkerSink(nil)
	prog.Walk(isa.Input{Name: "train"}, &isa.CountingConsumer{Inner: m2, Budget: 100})
	if m2.Seq() != 100 {
		t.Fatalf("simulated %d instructions after detach, want 100", m2.Seq())
	}
}

type panicTracer struct{}

func (*panicTracer) Trace(int64, *isa.Instr, *Times) { panic("typed-nil tracer invoked") }

type panicSink struct{}

func (*panicSink) MachineMarker(isa.Marker, int64) { panic("typed-nil sink invoked") }

type countTracer struct{ n int64 }

func (c *countTracer) Trace(int64, *isa.Instr, *Times) { c.n++ }

type countSink struct{ n int64 }

func (c *countSink) MachineMarker(isa.Marker, int64) { c.n++ }
