// Command mcdserved runs the sweep engine as a long-lived HTTP/JSON
// service (see internal/serve): a daemon that accepts concurrent sweep
// manifests, deduplicates them against the persistent result cache and
// artifact store it shares with the mcdsweep CLI, streams job outcomes
// as they finish, and applies admission control when the job queue is
// full.
//
// Usage:
//
//	mcdserved -cache DIR [-addr HOST:PORT] [-parallel K] [-train-workers P] [-queue N]
//	          [-drain-timeout D] [-fleet [-lease-ttl D] [-lease-attempts N]]
//	          [-trace N] [-pprof HOST:PORT]
//
// Endpoints:
//
//	POST /v1/sweeps              submit a manifest (mcdsweep's schema); returns the sweep ID
//	GET  /v1/sweeps/{id}         progress snapshot
//	GET  /v1/sweeps/{id}/stream  NDJSON job completions, live (?from=N resumes)
//	GET  /v1/sweeps/{id}/results merged results, byte-identical to `mcdsweep merge`
//	GET  /v1/sweeps/{id}/trace   NDJSON execution spans (-trace only; ?from=N resumes)
//	POST /v1/workers             (fleet) register a worker
//	POST /v1/leases[...]         (fleet) lease grant / heartbeat / completion
//	GET/PUT /v1/cache/{key}      (fleet) result-cache entry sync
//	GET/PUT /v1/artifacts/{key}  (fleet) artifact-store entry sync
//	GET  /healthz                liveness
//	GET  /metrics                Prometheus text format
//
// With -fleet the daemon never executes jobs itself: submitted sweeps
// are answered from its cache where possible, and the remainder is
// grouped by dependency anchor and leased to mcdworker processes (see
// cmd/mcdworker), with heartbeat-based expiry and reassignment.
//
// On SIGTERM/SIGINT the daemon drains gracefully: new submissions get
// 503 immediately, admitted sweeps run to completion (bounded by
// -drain-timeout), streams deliver their terminal lines, and only then
// does the listener close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served only when -pprof is set
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8337", "listen address (use :0 for an ephemeral port; the chosen address is printed)")
	cacheDir := flag.String("cache", "", "persistent result cache directory, shared with mcdsweep (required)")
	parallel := flag.Int("parallel", 0, "worker parallelism (default GOMAXPROCS)")
	trainWorkers := flag.Int("train-workers", 0, "intra-job training parallelism — overrides any manifest's train_workers; default GOMAXPROCS; results are bit-identical at every setting")
	queue := flag.Int("queue", 0, "admission budget: max admitted-but-unfinished jobs (default workers*64, min 1024)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Minute, "how long a graceful shutdown waits for admitted sweeps")
	leakCheck := flag.Bool("leakcheck", false, "after graceful shutdown, fail (exit 1) if any service goroutine is still alive — CI's no-goroutine-leak assert")
	fleetMode := flag.Bool("fleet", false, "run as a fleet coordinator: sweeps are leased to registered mcdworker processes instead of executing locally")
	leaseTTL := flag.Duration("lease-ttl", 15*time.Second, "fleet: how long a lease lives without a heartbeat before its anchor group is reassigned")
	leaseAttempts := flag.Int("lease-attempts", 3, "fleet: grants per anchor group (initial included) before its jobs fail with lease_failed")
	traceCap := flag.Int("trace", 0, "span-trace ring capacity: >0 enables execution tracing and GET /v1/sweeps/{id}/trace (16384 is a sensible size); 0 keeps tracing off")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty keeps the profiler off")
	flag.Parse()

	if *cacheDir == "" {
		fatal("missing -cache")
	}
	if *trainWorkers < 0 {
		fatal("-train-workers must be >= 0")
	}
	if *traceCap < 0 {
		fatal("-trace must be >= 0")
	}
	srv := serve.NewServer(*cacheDir, *parallel, *queue)
	srv.TrainWorkers = *trainWorkers
	if *traceCap > 0 {
		srv.Trace = obs.NewTracer(*traceCap)
	}
	if *fleetMode {
		srv.EnableFleet(serve.FleetConfig{LeaseTTL: *leaseTTL, MaxAttempts: *leaseAttempts})
	}
	if *pprofAddr != "" {
		stop, err := servePprof(*pprofAddr, "mcdserved")
		if err != nil {
			fatal(err.Error())
		}
		defer stop()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err.Error())
	}
	// The listening line goes to stdout (and is flushed by Println) so
	// scripts and tests that start the daemon on :0 can scrape the port.
	mode := "local execution"
	if *fleetMode {
		mode = fmt.Sprintf("fleet coordinator, lease ttl %s", *leaseTTL)
	}
	fmt.Printf("mcdserved: listening on http://%s (cache %s, %d workers, queue %d, %s)\n",
		ln.Addr(), *cacheDir, srv.Workers, srv.QueueDepth, mode)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "mcdserved: %v: draining\n", s)
	case err := <-serveErr:
		fatal(err.Error())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Drain first — submissions start failing fast with 503 while
	// status/stream/results keep answering — then close the listener
	// once every admitted sweep has delivered its terminal stream line.
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "mcdserved:", err)
		os.Exit(1)
	}
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "mcdserved:", err)
		os.Exit(1)
	}
	if *leakCheck {
		if err := checkGoroutines(5 * time.Second); err != nil {
			fmt.Fprintln(os.Stderr, "mcdserved: goroutine leak after drain:")
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Fprintln(os.Stderr, "mcdserved: drained, bye")
}

// checkGoroutines asserts that after a full drain no service goroutine
// is still alive: nothing from this module and no lingering HTTP
// connection handlers. The signal watcher and the runtime's own
// goroutines are expected survivors. It polls until the deadline to let
// stragglers park, then returns the offending stacks.
func checkGoroutines(wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		leaked := leakedStacks()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return errors.New(strings.Join(leaked, "\n\n"))
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// leakedStacks dumps all goroutine stacks and returns the stanzas that
// belong to the service: anything running module code (repro/) or a
// net/http connection handler. The main goroutine (which is running
// this check) and the os/signal watcher are filtered out.
func leakedStacks() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var leaked []string
	for _, stanza := range strings.Split(string(buf[:n]), "\n\n") {
		// The main goroutine (running this check — under `go test` it is
		// compiled as repro/cmd/mcdserved.leakedStacks, not
		// main.leakedStacks) and the signal watcher are expected.
		if stanza == "" ||
			strings.Contains(stanza, ".leakedStacks") ||
			strings.Contains(stanza, "os/signal") {
			continue
		}
		if strings.Contains(stanza, "repro/") || strings.Contains(stanza, "net/http.(*conn).serve") {
			leaked = append(leaked, stanza)
		}
	}
	return leaked
}

// servePprof serves the default mux — where the net/http/pprof import
// registered /debug/pprof — on its own listener, so the profiler never
// shares a port (or an exposure decision) with the API.
func servePprof(addr, prog string) (stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("pprof: %w", err)
	}
	fmt.Printf("%s: pprof on http://%s/debug/pprof/\n", prog, ln.Addr())
	ps := &http.Server{Handler: http.DefaultServeMux}
	go ps.Serve(ln)
	return func() { ps.Close() }, nil
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "mcdserved:", msg)
	os.Exit(1)
}
