package main

import (
	"bufio"
	"bytes"
	"context"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/sweep"
)

// TestMain lets the test binary impersonate the mcdserved daemon (the
// reexec style of cmd/mcdsweep/main_test.go): with the marker set, run
// main() with the test binary's arguments for true end-to-end coverage
// of flag parsing, signal handling and exit codes.
func TestMain(m *testing.M) {
	if os.Getenv("MCDSERVED_REEXEC") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// daemon is one reexec'd mcdserved under test.
type daemon struct {
	cmd     *exec.Cmd
	baseURL string
	stderr  *bytes.Buffer
}

// startDaemon boots mcdserved on an ephemeral port with -leakcheck and
// scrapes the listening address off its stdout.
func startDaemon(t *testing.T, cacheDir string) *daemon {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-addr", "127.0.0.1:0", "-cache", cacheDir, "-leakcheck")
	cmd.Env = append(os.Environ(), "MCDSERVED_REEXEC=1")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		line := sc.Text()
		if i := strings.Index(line, "listening on "); i >= 0 {
			url := strings.Fields(line[i+len("listening on "):])[0]
			d := &daemon{cmd: cmd, baseURL: url, stderr: &stderr}
			t.Cleanup(func() {
				if cmd.ProcessState == nil {
					cmd.Process.Kill()
					cmd.Wait()
				}
			})
			// Drain the rest of stdout so the child never blocks on a
			// full pipe.
			go func() {
				for sc.Scan() {
				}
			}()
			return d
		}
	}
	cmd.Wait()
	t.Fatalf("daemon never printed its address; stderr: %s", stderr.String())
	return nil
}

// stop SIGTERMs the daemon and returns its exit code after the
// graceful drain (and its -leakcheck goroutine assert) completes.
func (d *daemon) stop(t *testing.T) int {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
		return d.cmd.ProcessState.ExitCode()
	case <-time.After(2 * time.Minute):
		d.cmd.Process.Kill()
		t.Fatalf("daemon did not drain after SIGTERM; stderr: %s", d.stderr.String())
		return -1
	}
}

// TestGracefulShutdownCleanExit boots the daemon, probes /healthz, and
// checks SIGTERM produces a clean drain with no leaked goroutines
// (-leakcheck makes a leak a nonzero exit with a stack dump).
func TestGracefulShutdownCleanExit(t *testing.T) {
	d := startDaemon(t, t.TempDir())
	c := &serve.Client{BaseURL: d.baseURL}
	if err := c.Healthz(); err != nil {
		t.Fatal(err)
	}
	if code := d.stop(t); code != 0 {
		t.Fatalf("daemon exited %d after SIGTERM; stderr:\n%s", code, d.stderr.String())
	}
	if !strings.Contains(d.stderr.String(), "drained, bye") {
		t.Errorf("no graceful-drain farewell on stderr: %s", d.stderr.String())
	}
}

// TestServedMatchesLocalRun is the end-to-end acceptance check: a
// daemon-served run of the ci-manifest must produce merged results —
// and result-cache and artifact-store entry bytes — byte-identical to
// a local `mcdsweep run` + `merge` of the same manifest into a
// separate cache directory.
func TestServedMatchesLocalRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full ci-manifest twice")
	}
	manifestPath := filepath.Join("..", "..", "perf", "ci-manifest.json")
	body, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sweep.LoadManifest(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	jobs, err := m.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	// Local reference run: the exact library path `mcdsweep run` +
	// `mcdsweep merge` take.
	localDir := t.TempDir()
	eng := sweep.New(cfg)
	eng.Cache = &sweep.Cache{Dir: localDir}
	eng.Artifacts = sweep.ArtifactStore(localDir)
	if _, _, err := eng.Run(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	localBytes, err := sweep.MergeBytes(cfg, jobs, eng.Cache)
	if err != nil {
		t.Fatal(err)
	}

	// Served run into a separate cache directory.
	servedDir := t.TempDir()
	d := startDaemon(t, servedDir)
	c := &serve.Client{BaseURL: d.baseURL}
	events := 0
	st, err := c.RunManifest(body, func(serve.Event) { events++ })
	if err != nil {
		t.Fatalf("served run: %v; stderr: %s", err, d.stderr.String())
	}
	if st.State != serve.StateComplete {
		t.Fatalf("sweep state %s: %s", st.State, st.Error)
	}
	if events != len(jobs) {
		t.Errorf("streamed %d events, want %d", events, len(jobs))
	}
	if st.Summary == nil || st.Summary.Executed == 0 {
		t.Errorf("cold served run executed nothing: %+v", st.Summary)
	}
	servedBytes, err := c.Results(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(servedBytes, localBytes) {
		t.Errorf("served results differ from local merge (%d vs %d bytes)", len(servedBytes), len(localBytes))
	}

	// Stop before diffing the stores so every entry has landed.
	if code := d.stop(t); code != 0 {
		t.Fatalf("daemon exited %d; stderr:\n%s", code, d.stderr.String())
	}

	// Cache entry and artifact bytes: same relative file set, identical
	// contents.
	localFiles := entrySet(t, localDir)
	servedFiles := entrySet(t, servedDir)
	if len(localFiles) != len(servedFiles) {
		t.Errorf("entry sets differ: local %d files, served %d", len(localFiles), len(servedFiles))
	}
	for rel, lb := range localFiles {
		sb, ok := servedFiles[rel]
		if !ok {
			t.Errorf("served cache missing %s", rel)
			continue
		}
		if !bytes.Equal(lb, sb) {
			t.Errorf("entry %s differs between local and served caches", rel)
		}
	}
}

// entrySet maps every persistent entry file under dir (result cache and
// artifact store alike) to its contents, keyed by relative path.
func entrySet(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".json") {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		out[rel] = b
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}
