// Command mcdsweep enumerates, shards, runs, merges and prunes
// experiment sweeps over the paper's evaluation grid, backed by the
// content-addressed persistent result cache and artifact store in
// internal/sweep.
//
// Usage:
//
//	mcdsweep enum   -manifest m.json [-shards N -shard I]
//	mcdsweep run    -manifest m.json -cache DIR [-shards N -shard I] [-parallel K] [-trace spans.ndjson] [-v]
//	mcdsweep run    -manifest m.json -server URL [-v]
//	mcdsweep merge  -manifest m.json -cache DIR [-o out.json] [-oracle]
//	mcdsweep merge  -manifest m.json -server URL [-o out.json]
//	mcdsweep prune  -manifest m.json -cache DIR [-rm]
//	mcdsweep timing -trace spans.ndjson
//
// run -trace records every execution span (per-job and per-phase
// timing, cache/artifact/stream outcomes) into a bounded ring and dumps
// it as NDJSON on exit; tracing is off without the flag and costs the
// hot path nothing. run -v prints the per-phase wall-clock breakdown
// (train/shake/sim/merge plus hit counters) and includes it in the
// summary JSON. timing renders a captured trace as a per-phase,
// per-policy table: count, total, p50/p95/max, hit ratio — the same
// report mcdreport -only timing emits.
//
// With -server, run submits the manifest to a running mcdserved daemon
// (cmd/mcdserved) and waits for the streamed completion instead of
// executing locally, and merge fetches the daemon's merged results —
// byte-identical to a local merge over the daemon's cache directory.
//
// A manifest is a JSON grid (see internal/sweep.Manifest):
//
//	{
//	  "name": "headline",
//	  "benchmarks": ["adpcm_decode", "mcf"],
//	  "policies": ["baseline", "offline", "scheme"],
//	  "schemes": ["L+F"],
//	  "deltas": [0.5, 1, 2]
//	}
//
// run prints a JSON summary whose "executed" counter is zero when every
// job was already cached, so re-running a completed manifest does no
// simulation work. Alongside the result cache, run persists trained
// profiles into DIR/artifacts, so profile-driven jobs with new
// parameters (e.g. fresh threshold deltas) replan from stored training
// state instead of retraining. Shards partition jobs by stable anchor
// key — each job placed with the training its dependency chain hangs
// off — so a cold fleet of N processes sharing the cache directory
// executes each training, and each shared dependency run, exactly once;
// then merge: the merged output is byte-identical to an unsharded run's.
//
// merge streams results from the cache directory's columnar segment
// layer (DIR/segments), falling back to the per-job JSON entries for
// any key segments do not cover; -oracle forces the JSON-only
// materialized path, whose output merge is byte-identical to. run
// seals completed jobs into segments as it goes, so a warm cache
// merges from a handful of segment reads instead of one file per job.
//
// prune garbage-collects cache and artifact entries not reachable from
// the manifest's jobs (including their dependency closure), and
// compacts the segment layer: segments whose rows are all reachable are
// kept, the rest have their live rows rewritten into a fresh segment.
// It is a dry run by default, listing what it would delete and the
// reclaimable bytes per segment; -rm deletes. Long-lived shared cache
// directories otherwise grow without bound as configurations and grids
// evolve.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sweep"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "enum", "run", "merge", "prune", "timing":
	default:
		usage()
	}

	fs := flag.NewFlagSet("mcdsweep "+cmd, flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "sweep manifest JSON file (required)")
	cacheDir := fs.String("cache", "", "persistent result cache directory (artifact store lives in its artifacts/ subdirectory)")
	shards := fs.Int("shards", 1, "total number of shards")
	shard := fs.Int("shard", 0, "this process's shard index, 0-based")
	parallel := fs.Int("parallel", 0, "worker parallelism (default GOMAXPROCS)")
	recCache := fs.Int("recording-cache", 0, "recorded-stream cache entries (overrides the manifest's recording_cache; default auto-sized)")
	trainWorkers := fs.Int("train-workers", 0, "intra-job training parallelism — segment-shake workers and concurrent batched collection (overrides the manifest's train_workers; default GOMAXPROCS; results are bit-identical at every setting)")
	out := fs.String("o", "", "merge output file (default stdout)")
	oracle := fs.Bool("oracle", false, "merge: read the per-job JSON cache only, bypassing columnar segments (the byte-identity oracle path)")
	rm := fs.Bool("rm", false, "prune: actually delete unreachable entries and compact segments (default: dry run)")
	server := fs.String("server", "", "mcdserved base URL (e.g. http://127.0.0.1:8337); run submits and waits instead of executing locally, merge fetches the served results")
	tracePath := fs.String("trace", "", "run: write the sweep's execution spans to this NDJSON file; timing: read spans from it (\"-\" for stdin)")
	verbose := fs.Bool("v", false, "run: print the per-phase wall-clock breakdown and include it in the summary JSON")
	fs.Parse(args)

	if cmd == "timing" {
		// timing aggregates an already-captured trace; no manifest, cache
		// or engine is involved.
		rejectFlags(cmd, *manifestPath != "", "-manifest", *cacheDir != "", "-cache", *out != "", "-o",
			*parallel != 0, "-parallel", *rm, "-rm", *server != "", "-server", *oracle, "-oracle",
			*shards != 1, "-shards", *shard != 0, "-shard", *recCache != 0, "-recording-cache",
			*trainWorkers != 0, "-train-workers", *verbose, "-v")
		if *tracePath == "" {
			fatal("timing requires -trace FILE (\"-\" for stdin)")
		}
		if err := timingReport(os.Stdout, *tracePath); err != nil {
			fatal(err.Error())
		}
		return
	}
	if *manifestPath == "" {
		fatal("missing -manifest")
	}
	if *shards < 1 || *shard < 0 || *shard >= *shards {
		fatal(fmt.Sprintf("invalid shard selection %d/%d", *shard, *shards))
	}
	if *recCache < 0 {
		fatal(fmt.Sprintf("invalid -recording-cache %d", *recCache))
	}
	if *trainWorkers < 0 {
		fatal(fmt.Sprintf("invalid -train-workers %d", *trainWorkers))
	}
	// Reject flags the subcommand ignores rather than silently dropping
	// them: a shard-scoped merge, for example, is not a thing — merge
	// always reassembles the full manifest from the cache.
	switch cmd {
	case "enum":
		rejectFlags(cmd, *cacheDir != "", "-cache", *out != "", "-o", *parallel != 0, "-parallel", *rm, "-rm", *server != "", "-server", *recCache != 0, "-recording-cache", *trainWorkers != 0, "-train-workers", *oracle, "-oracle", *tracePath != "", "-trace", *verbose, "-v")
	case "run":
		rejectFlags(cmd, *out != "", "-o", *rm, "-rm", *oracle, "-oracle")
		if *server != "" {
			// The daemon owns its cache directory, worker pool and shard
			// placement; client mode only submits and waits. Its trace —
			// if it runs one — is served on /v1/sweeps/{id}/trace.
			rejectFlags(cmd+" -server", *cacheDir != "", "-cache", *shards != 1, "-shards",
				*shard != 0, "-shard", *parallel != 0, "-parallel", *recCache != 0, "-recording-cache",
				*trainWorkers != 0, "-train-workers", *tracePath != "", "-trace")
		}
	case "merge":
		rejectFlags(cmd, *shards != 1, "-shards", *shard != 0, "-shard", *parallel != 0, "-parallel", *rm, "-rm", *recCache != 0, "-recording-cache", *trainWorkers != 0, "-train-workers", *tracePath != "", "-trace", *verbose, "-v")
		if *server != "" {
			rejectFlags(cmd+" -server", *cacheDir != "", "-cache", *oracle, "-oracle")
		}
	case "prune":
		rejectFlags(cmd, *shards != 1, "-shards", *shard != 0, "-shard", *parallel != 0, "-parallel", *out != "", "-o", *server != "", "-server", *recCache != 0, "-recording-cache", *trainWorkers != 0, "-train-workers", *oracle, "-oracle", *tracePath != "", "-trace", *verbose, "-v")
	}
	m, err := sweep.LoadManifest(*manifestPath)
	if err != nil {
		// Surface the same structured triple the daemon returns for the
		// identical manifest mistake.
		var verr *sweep.ValidationError
		if errors.As(err, &verr) {
			fatalValidation(verr)
		}
		fatal(err.Error())
	}
	cfg := m.Config()
	jobs, err := m.Jobs()
	if err != nil {
		fatal(err.Error())
	}

	switch cmd {
	case "enum":
		mine := sweep.Shard(cfg, jobs, *shards, *shard)
		for _, j := range mine {
			fmt.Printf("%s  %s\n", sweep.Key(cfg, j)[:12], j)
		}
		fmt.Fprintf(os.Stderr, "%d jobs (shard %d/%d of %d total)\n",
			len(mine), *shard, *shards, len(jobs))

	case "run":
		if *server != "" {
			runRemote(*server, *manifestPath, m, *verbose)
			return
		}
		if *cacheDir == "" {
			fatal("run requires -cache")
		}
		if *trainWorkers > 0 {
			// Like recording_cache, an execution knob: flag wins over the
			// manifest, and it never enters cache keys.
			cfg.TrainWorkers = *trainWorkers
		}
		eng := sweep.New(cfg)
		eng.Workers = *parallel
		eng.RecordingCache = recordingCache(m, *recCache)
		eng.Cache = &sweep.Cache{Dir: *cacheDir}
		eng.Artifacts = sweep.ArtifactStore(*cacheDir)
		eng.Segments = sweep.SegmentStoreFor(*cacheDir)
		eng.Streams = sweep.StreamStoreFor(*cacheDir)
		if *tracePath != "" {
			eng.Trace = obs.NewTracer(0)
		}
		mine := sweep.Shard(cfg, jobs, *shards, *shard)
		_, sum, err := eng.Run(context.Background(), mine)
		phases := eng.Phases()
		summary := struct {
			Manifest string `json:"manifest"`
			Shard    int    `json:"shard"`
			Shards   int    `json:"shards"`
			sweep.Summary
			Phases *sweep.PhaseBreakdown `json:"phases,omitempty"`
		}{Manifest: m.Name, Shard: *shard, Shards: *shards, Summary: sum}
		if *verbose {
			summary.Phases = &phases
			fmt.Fprintf(os.Stderr, "mcdsweep: phases: %s\n", phases)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.Encode(summary)
		if *tracePath != "" {
			if werr := writeTrace(*tracePath, eng.Trace); werr != nil {
				fatal(werr.Error())
			}
		}
		if err != nil {
			fatal(err.Error())
		}

	case "merge":
		if *server != "" {
			writeMergeOutput(*out, mergeRemote(*server, *manifestPath))
			return
		}
		if *cacheDir == "" {
			fatal("merge requires -cache")
		}
		if *oracle {
			// The oracle path: per-job JSON only, materialized in memory
			// — the serialization every other merge surface must match
			// byte for byte.
			b, err := sweep.MergeBytes(cfg, jobs, &sweep.Cache{Dir: *cacheDir})
			if err != nil {
				fatal(err.Error())
			}
			writeMergeOutput(*out, b)
			return
		}
		// Default path: verify completeness up front, then stream rows
		// from the columnar segments (JSON fallback per key) without
		// materializing the result set.
		src := sweep.SourceFor(*cacheDir)
		if err := sweep.MergeCheck(cfg, jobs, src); err != nil {
			fatal(err.Error())
		}
		if err := streamMerge(*out, cfg, jobs, src); err != nil {
			fatal(err.Error())
		}

	case "prune":
		if *cacheDir == "" {
			fatal("prune requires -cache")
		}
		results, artifacts, streams, err := sweep.Reachable(cfg, jobs)
		if err != nil {
			fatal(err.Error())
		}
		unreachable, err := sweep.Unreachable(*cacheDir, results, artifacts, streams)
		if err != nil {
			fatal(err.Error())
		}
		var bytes int64
		var streamDoomed int
		var streamDoomedBytes int64
		for _, rel := range unreachable {
			sz := sweep.EntrySize(*cacheDir, rel)
			bytes += sz
			if filepath.Dir(filepath.Dir(rel)) == "streams" {
				streamDoomed++
				streamDoomedBytes += sz
			}
			fmt.Println(rel)
		}
		streamCount, streamBytes, err := sweep.StreamStats(*cacheDir)
		if err != nil {
			fatal(err.Error())
		}
		segs, err := sweep.SegmentStats(*cacheDir, results)
		if err != nil {
			fatal(err.Error())
		}
		var segReclaim int64
		var segDoomed int
		for _, st := range segs {
			segReclaim += st.Reclaimable
			if st.Corrupt || st.Live < st.Rows {
				segDoomed++
			}
			note := ""
			if st.Corrupt {
				note = " corrupt"
			}
			fmt.Fprintf(os.Stderr, "segment %s: rows=%d live=%d bytes=%d reclaimable=%d%s\n",
				st.Rel, st.Rows, st.Live, st.Bytes, st.Reclaimable, note)
		}
		if !*rm {
			fmt.Fprintf(os.Stderr,
				"prune (dry run): %d unreachable entries, %d bytes; %d of %d segments compactable, ~%d bytes reclaimable; streams: %d entries, %d bytes, %d unreachable (%d bytes); %d result keys, %d artifact keys and %d stream keys reachable; rerun with -rm to delete\n",
				len(unreachable), bytes, segDoomed, len(segs), segReclaim, streamCount, streamBytes, streamDoomed, streamDoomedBytes, len(results), len(artifacts), len(streams))
			return
		}
		removed, freed, err := sweep.Prune(*cacheDir, unreachable)
		if err != nil {
			fatal(err.Error())
		}
		segRemoved, segFreed, err := sweep.CompactSegments(*cacheDir, results)
		if err != nil {
			fatal(err.Error())
		}
		fmt.Fprintf(os.Stderr, "prune: removed %d entries, freed %d bytes; compacted %d segments, freed %d bytes\n",
			removed, freed, segRemoved, segFreed)
	}
}

// runRemote is run's client mode: submit the manifest to a daemon, wait
// for the streamed completion, and print a run-style summary line with
// the sweep ID and the server's batch summary (same semantics as a
// local run: executed is zero iff everything was served from cache).
func runRemote(server, manifestPath string, m *sweep.Manifest, verbose bool) {
	body, err := os.ReadFile(manifestPath)
	if err != nil {
		fatal(err.Error())
	}
	c := &serve.Client{BaseURL: server}
	st, err := c.RunManifest(body, nil)
	if err != nil {
		fatal(err.Error())
	}
	var sum sweep.Summary
	if st.Summary != nil {
		sum = *st.Summary
	}
	summary := struct {
		Manifest string `json:"manifest"`
		Server   string `json:"server"`
		SweepID  string `json:"sweep_id"`
		sweep.Summary
		Phases *sweep.PhaseBreakdown `json:"phases,omitempty"`
	}{Manifest: m.Name, Server: server, SweepID: st.ID, Summary: sum}
	if verbose && st.Phases != nil {
		summary.Phases = st.Phases
		fmt.Fprintf(os.Stderr, "mcdsweep: phases: %s\n", *st.Phases)
	}
	json.NewEncoder(os.Stdout).Encode(summary)
	if st.Error != "" {
		fatal(st.Error)
	}
}

// writeTrace dumps a run's spans as NDJSON, terminated by a
// {"done":true,...} accounting line (readers skip it: spans are the
// lines with a phase). Written through a temp file + rename so an
// interrupted dump never leaves a truncated trace behind.
func writeTrace(path string, tr *obs.Tracer) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	next, dropped, err := tr.WriteNDJSON(tmp, 0)
	if err == nil {
		_, err = fmt.Fprintf(tmp, "{\"done\":true,\"spans\":%d,\"dropped\":%d}\n", next-dropped, dropped)
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Chmod(tmp.Name(), 0o644)
	}
	if err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("trace: %w", err)
	}
	if dropped > 0 {
		fmt.Fprintf(os.Stderr, "mcdsweep: trace: ring overflowed; oldest %d span(s) dropped (raise the ring with a bigger tracer)\n", dropped)
	}
	return nil
}

// timingReport renders the per-phase timing table from a span NDJSON
// file ("-" for stdin) — the same aggregation mcdreport -only timing
// prints.
func timingReport(w io.Writer, path string) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	spans, err := obs.ReadSpans(r)
	if err != nil {
		return err
	}
	return obs.Aggregate(spans).WriteTable(w)
}

// mergeRemote is merge's client mode: submit the manifest (a completed
// or cached sweep resolves without recomputation), wait, and fetch the
// merged results the daemon serves — byte-identical to a local merge
// over the same cache.
func mergeRemote(server, manifestPath string) []byte {
	body, err := os.ReadFile(manifestPath)
	if err != nil {
		fatal(err.Error())
	}
	c := &serve.Client{BaseURL: server}
	st, err := c.Submit(body)
	if err != nil {
		fatal(err.Error())
	}
	if st.State == serve.StateRunning {
		// Unlike a local merge (which fails fast on missing cache
		// entries), the daemon computes whatever is missing; make the
		// wait — and the reason for it — visible. A sweep that is
		// already done skips the stream entirely: replaying N outcome
		// events just to reach the terminal line would double the
		// transfer for warm merges.
		fmt.Fprintf(os.Stderr, "mcdsweep: merge -server: sweep %s is running (%d/%d jobs done); waiting while the daemon completes it\n",
			st.ID, st.Done, st.Jobs)
		st, err = c.Follow(st.ID, st.Jobs, nil)
		if err != nil {
			fatal(err.Error())
		}
	}
	if st.Error != "" {
		fatal(st.Error)
	}
	b, err := c.Results(st.ID)
	if err != nil {
		fatal(err.Error())
	}
	return b
}

// writeMergeOutput delivers already-materialized merge bytes (remote or
// oracle mode) to stdout or -o.
func writeMergeOutput(out string, b []byte) {
	if out == "" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		fatal(err.Error())
	}
}

// streamMerge writes the streaming merge to stdout or, for -o, through
// a temp file + rename so a mid-stream failure never leaves a partial
// output file behind.
func streamMerge(out string, cfg core.Config, jobs []sweep.Job, src sweep.MergeSource) error {
	if out == "" {
		return sweep.MergeTo(os.Stdout, cfg, jobs, src)
	}
	dir := filepath.Dir(out)
	tmp, err := os.CreateTemp(dir, filepath.Base(out)+".tmp*")
	if err != nil {
		return err
	}
	if err := sweep.MergeTo(tmp, cfg, jobs, src); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), out); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mcdsweep enum   -manifest m.json [-shards N -shard I]
  mcdsweep run    -manifest m.json -cache DIR [-shards N -shard I] [-parallel K] [-trace spans.ndjson] [-v]
  mcdsweep run    -manifest m.json -server URL [-v]
  mcdsweep merge  -manifest m.json -cache DIR [-o out.json]
  mcdsweep merge  -manifest m.json -server URL [-o out.json]
  mcdsweep prune  -manifest m.json -cache DIR [-rm]
  mcdsweep timing -trace spans.ndjson`)
	os.Exit(2)
}

// rejectFlags takes (set, name) pairs and fails when a flag the
// subcommand does not use was given.
func rejectFlags(cmd string, pairs ...interface{}) {
	for i := 0; i < len(pairs); i += 2 {
		if pairs[i].(bool) {
			fatal(fmt.Sprintf("%s does not take %s", cmd, pairs[i+1].(string)))
		}
	}
}

// recordingCache resolves the engine's recorded-stream cache bound: the
// -recording-cache flag wins over the manifest's recording_cache field;
// zero keeps the engine's automatic sizing.
func recordingCache(m *sweep.Manifest, flagVal int) int {
	if flagVal > 0 {
		return flagVal
	}
	return m.RecordingCache
}

// fatalValidation renders a manifest validation error as the same
// (code, message, field) triple the daemon returns over HTTP.
func fatalValidation(v *sweep.ValidationError) {
	if v.Field != "" {
		fatal(fmt.Sprintf("%s (code %s, field %q)", v.Message, v.Code, v.Field))
	}
	fatal(fmt.Sprintf("%s (code %s)", v.Message, v.Code))
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "mcdsweep:", msg)
	os.Exit(1)
}
