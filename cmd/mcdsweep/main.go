// Command mcdsweep enumerates, shards, runs and merges experiment
// sweeps over the paper's evaluation grid, backed by the
// content-addressed persistent result cache in internal/sweep.
//
// Usage:
//
//	mcdsweep enum  -manifest m.json [-shards N -shard I]
//	mcdsweep run   -manifest m.json -cache DIR [-shards N -shard I] [-parallel K]
//	mcdsweep merge -manifest m.json -cache DIR [-o out.json]
//
// A manifest is a JSON grid (see internal/sweep.Manifest):
//
//	{
//	  "name": "headline",
//	  "benchmarks": ["adpcm_decode", "mcf"],
//	  "policies": ["baseline", "offline", "scheme"],
//	  "schemes": ["L+F"],
//	  "deltas": [0.5, 1, 2]
//	}
//
// run prints a JSON summary whose "executed" counter is zero when every
// job was already cached, so re-running a completed manifest does no
// simulation work. Shards partition jobs by stable key hash: run the
// same manifest with -shards N -shard 0..N-1 (possibly on N machines
// sharing the cache directory), then merge; the merged output is
// byte-identical to an unsharded run's.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/sweep"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "enum", "run", "merge":
	default:
		usage()
	}

	fs := flag.NewFlagSet("mcdsweep "+cmd, flag.ExitOnError)
	manifestPath := fs.String("manifest", "", "sweep manifest JSON file (required)")
	cacheDir := fs.String("cache", "", "persistent result cache directory")
	shards := fs.Int("shards", 1, "total number of shards")
	shard := fs.Int("shard", 0, "this process's shard index, 0-based")
	parallel := fs.Int("parallel", 0, "worker parallelism (default GOMAXPROCS)")
	out := fs.String("o", "", "merge output file (default stdout)")
	fs.Parse(args)

	if *manifestPath == "" {
		fatal("missing -manifest")
	}
	if *shards < 1 || *shard < 0 || *shard >= *shards {
		fatal(fmt.Sprintf("invalid shard selection %d/%d", *shard, *shards))
	}
	// Reject flags the subcommand ignores rather than silently dropping
	// them: a shard-scoped merge, for example, is not a thing — merge
	// always reassembles the full manifest from the cache.
	switch cmd {
	case "enum":
		rejectFlags(cmd, *cacheDir != "", "-cache", *out != "", "-o", *parallel != 0, "-parallel")
	case "run":
		rejectFlags(cmd, *out != "", "-o")
	case "merge":
		rejectFlags(cmd, *shards != 1, "-shards", *shard != 0, "-shard", *parallel != 0, "-parallel")
	}
	m, err := sweep.LoadManifest(*manifestPath)
	if err != nil {
		fatal(err.Error())
	}
	cfg := m.Config()
	jobs, err := m.Jobs()
	if err != nil {
		fatal(err.Error())
	}

	switch cmd {
	case "enum":
		mine := sweep.Shard(cfg, jobs, *shards, *shard)
		for _, j := range mine {
			fmt.Printf("%s  %s\n", sweep.Key(cfg, j)[:12], j)
		}
		fmt.Fprintf(os.Stderr, "%d jobs (shard %d/%d of %d total)\n",
			len(mine), *shard, *shards, len(jobs))

	case "run":
		if *cacheDir == "" {
			fatal("run requires -cache")
		}
		eng := sweep.New(cfg)
		eng.Workers = *parallel
		eng.Cache = &sweep.Cache{Dir: *cacheDir}
		mine := sweep.Shard(cfg, jobs, *shards, *shard)
		_, sum, err := eng.Run(mine)
		summary := struct {
			Manifest string `json:"manifest"`
			Shard    int    `json:"shard"`
			Shards   int    `json:"shards"`
			sweep.Summary
		}{m.Name, *shard, *shards, sum}
		enc := json.NewEncoder(os.Stdout)
		enc.Encode(summary)
		if err != nil {
			fatal(err.Error())
		}

	case "merge":
		if *cacheDir == "" {
			fatal("merge requires -cache")
		}
		merged, err := sweep.Merge(cfg, jobs, &sweep.Cache{Dir: *cacheDir})
		if err != nil {
			fatal(err.Error())
		}
		b, err := json.MarshalIndent(merged, "", " ")
		if err != nil {
			fatal(err.Error())
		}
		b = append(b, '\n')
		if *out == "" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*out, b, 0o644); err != nil {
			fatal(err.Error())
		}
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  mcdsweep enum  -manifest m.json [-shards N -shard I]
  mcdsweep run   -manifest m.json -cache DIR [-shards N -shard I] [-parallel K]
  mcdsweep merge -manifest m.json -cache DIR [-o out.json]`)
	os.Exit(2)
}

// rejectFlags takes (set, name) pairs and fails when a flag the
// subcommand does not use was given.
func rejectFlags(cmd string, pairs ...interface{}) {
	for i := 0; i < len(pairs); i += 2 {
		if pairs[i].(bool) {
			fatal(fmt.Sprintf("%s does not take %s", cmd, pairs[i+1].(string)))
		}
	}
}

func fatal(msg string) {
	fmt.Fprintln(os.Stderr, "mcdsweep:", msg)
	os.Exit(1)
}
