package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestMain lets the test binary impersonate the mcdsweep CLI: when the
// reexec marker is set, run main() with the test binary's arguments
// instead of the test harness. This gives true end-to-end coverage of
// flag parsing, manifest loading and exit codes without a separate
// `go build` step.
func TestMain(m *testing.M) {
	if os.Getenv("MCDSWEEP_REEXEC") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runCLI reexecs the test binary as mcdsweep with args.
func runCLI(t *testing.T, args ...string) (stdout, stderr string, exitCode int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "MCDSWEEP_REEXEC=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return out.String(), errb.String(), code
}

func writeManifest(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestEnumRejectsUnknownTopology is the end-to-end CLI check for the
// manifest topology boundary: an unknown name must fail with a nonzero
// exit and list every registered topology.
func TestEnumRejectsUnknownTopology(t *testing.T) {
	path := writeManifest(t, `{"benchmarks":["g721_decode"],"policies":["baseline"],"topology":"octo8"}`)
	_, stderr, code := runCLI(t, "enum", "-manifest", path)
	if code == 0 {
		t.Fatalf("enum accepted unknown topology; stderr: %s", stderr)
	}
	for _, want := range []string{`unknown topology "octo8"`, "paper4", "sync1", "fe-be2", "fine6"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("stderr %q missing %q", stderr, want)
		}
	}
}

// TestEnumTopologyChangesKeys verifies a valid non-default topology
// enumerates the same jobs under different cache keys, while naming the
// default explicitly keeps the historical keys.
func TestEnumTopologyChangesKeys(t *testing.T) {
	base := writeManifest(t, `{"benchmarks":["g721_decode"],"policies":["baseline"]}`)
	named := writeManifest(t, `{"benchmarks":["g721_decode"],"policies":["baseline"],"topology":"paper4"}`)
	fine := writeManifest(t, `{"benchmarks":["g721_decode"],"policies":["baseline"],"topology":"fine6"}`)

	outBase, _, code := runCLI(t, "enum", "-manifest", base)
	if code != 0 {
		t.Fatalf("enum failed: %d", code)
	}
	outNamed, _, _ := runCLI(t, "enum", "-manifest", named)
	outFine, _, _ := runCLI(t, "enum", "-manifest", fine)
	if outBase != outNamed {
		t.Errorf("explicit default topology moved keys:\n%s\nvs\n%s", outBase, outNamed)
	}
	if outBase == outFine {
		t.Errorf("fine6 topology did not move keys:\n%s", outBase)
	}
	if !strings.Contains(outFine, "g721_decode/baseline") {
		t.Errorf("fine6 enum lost the job row: %s", outFine)
	}
}

// TestRunAndMergeWithTopology runs a tiny non-default-topology manifest
// through run and merge against a shared cache directory.
func TestRunAndMergeWithTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a benchmark")
	}
	path := writeManifest(t, `{"benchmarks":["g721_decode"],"policies":["baseline","online"],"topology":"fe-be2"}`)
	cache := t.TempDir()
	stdout, stderr, code := runCLI(t, "run", "-manifest", path, "-cache", cache)
	if code != 0 {
		t.Fatalf("run failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stdout, `"executed":2`) {
		t.Errorf("cold run summary = %s, want 2 executed", stdout)
	}
	// Re-run: everything served from the persistent cache.
	stdout, _, code = runCLI(t, "run", "-manifest", path, "-cache", cache)
	if code != 0 || !strings.Contains(stdout, `"executed":0`) {
		t.Errorf("warm run summary = %s (code %d), want 0 executed", stdout, code)
	}
	merged, stderr, code := runCLI(t, "merge", "-manifest", path, "-cache", cache)
	if code != 0 {
		t.Fatalf("merge failed (%d): %s", code, stderr)
	}
	if !strings.Contains(merged, "g721_decode") || !strings.Contains(merged, "DomainPJ") {
		t.Errorf("merge output incomplete: %.200s", merged)
	}
}

// TestMergeColumnarMatchesOracle is the CLI-level byte-identity check:
// the default (segment-streaming) merge and the -oracle (JSON-only)
// merge must emit identical bytes, the warm run must report segment
// hits, and the segments must keep answering after the JSON entries are
// deleted.
func TestMergeColumnarMatchesOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a benchmark")
	}
	path := writeManifest(t, `{"benchmarks":["g721_decode"],"policies":["baseline","online","single_clock"]}`)
	cache := t.TempDir()
	_, stderr, code := runCLI(t, "run", "-manifest", path, "-cache", cache)
	if code != 0 {
		t.Fatalf("run failed (%d): %s", code, stderr)
	}
	merged, stderr, code := runCLI(t, "merge", "-manifest", path, "-cache", cache)
	if code != 0 {
		t.Fatalf("merge failed (%d): %s", code, stderr)
	}
	oracle, stderr, code := runCLI(t, "merge", "-manifest", path, "-cache", cache, "-oracle")
	if code != 0 {
		t.Fatalf("merge -oracle failed (%d): %s", code, stderr)
	}
	if merged != oracle {
		t.Fatal("columnar merge differs from JSON oracle")
	}
	// The warm run is answered by the segment layer.
	stdout, _, code := runCLI(t, "run", "-manifest", path, "-cache", cache)
	if code != 0 || !strings.Contains(stdout, `"segment_hits":3`) || !strings.Contains(stdout, `"executed":0`) {
		t.Errorf("warm run summary = %s, want 3 segment hits, 0 executed", stdout)
	}
	// Drop the per-job JSON layer: segments alone still reproduce the
	// oracle's bytes.
	entries, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() && e.Name() != "segments" && e.Name() != "artifacts" {
			if err := os.RemoveAll(filepath.Join(cache, e.Name())); err != nil {
				t.Fatal(err)
			}
		}
	}
	segOnly, stderr, code := runCLI(t, "merge", "-manifest", path, "-cache", cache)
	if code != 0 {
		t.Fatalf("segments-only merge failed (%d): %s", code, stderr)
	}
	if segOnly != oracle {
		t.Fatal("segments-only merge differs from JSON oracle")
	}
	// -oracle now fails: the JSON layer is gone, and the oracle path
	// must not silently fall back to segments.
	if _, _, code := runCLI(t, "merge", "-manifest", path, "-cache", cache, "-oracle"); code == 0 {
		t.Fatal("merge -oracle succeeded without JSON entries")
	}
}

// TestPruneCompactsSegments covers the prune satellite: a shrunk
// manifest makes some segment rows unreachable; the dry run reports
// reclaimable bytes per segment, -rm compacts, and the surviving rows
// still merge byte-identically to the JSON oracle.
func TestPruneCompactsSegments(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a benchmark")
	}
	full := writeManifest(t, `{"benchmarks":["g721_decode"],"policies":["baseline","online"]}`)
	shrunk := writeManifest(t, `{"benchmarks":["g721_decode"],"policies":["baseline"]}`)
	cache := t.TempDir()
	if _, stderr, code := runCLI(t, "run", "-manifest", full, "-cache", cache); code != 0 {
		t.Fatalf("run failed: %s", stderr)
	}
	_, stderr, code := runCLI(t, "prune", "-manifest", shrunk, "-cache", cache)
	if code != 0 {
		t.Fatalf("prune dry run failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stderr, "segment segments/seg-") || !strings.Contains(stderr, "reclaimable=") {
		t.Errorf("dry run did not report per-segment reclaimable bytes: %s", stderr)
	}
	if !strings.Contains(stderr, "dry run") {
		t.Errorf("prune deleted without -rm: %s", stderr)
	}
	_, stderr, code = runCLI(t, "prune", "-manifest", shrunk, "-cache", cache, "-rm")
	if code != 0 || !strings.Contains(stderr, "compacted") {
		t.Fatalf("prune -rm failed (%d): %s", code, stderr)
	}
	merged, stderr, code := runCLI(t, "merge", "-manifest", shrunk, "-cache", cache)
	if code != 0 {
		t.Fatalf("post-compaction merge failed: %s", stderr)
	}
	oracle, _, code := runCLI(t, "merge", "-manifest", shrunk, "-cache", cache, "-oracle")
	if code != 0 || merged != oracle {
		t.Fatal("post-compaction merge differs from JSON oracle")
	}
	// The pruned job really is gone from both layers.
	if _, _, code := runCLI(t, "merge", "-manifest", full, "-cache", cache); code == 0 {
		t.Fatal("pruned sweep still merges")
	}
}

// TestPruneStreamCache covers the packed-stream side of prune: streams
// not reachable from the manifest's dependency closure show up in the
// dry-run stats and are removed by -rm, while reachable streams survive
// and keep serving warm runs.
func TestPruneStreamCache(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a benchmark")
	}
	full := writeManifest(t, `{"benchmarks":["g721_decode","adpcm_decode"],"policies":["baseline"]}`)
	shrunk := writeManifest(t, `{"benchmarks":["g721_decode"],"policies":["baseline"]}`)
	cache := t.TempDir()
	if _, stderr, code := runCLI(t, "run", "-manifest", full, "-cache", cache); code != 0 {
		t.Fatalf("run failed: %s", stderr)
	}
	// Two benches -> two stored reference streams; the shrunk manifest
	// reaches one of them.
	_, stderr, code := runCLI(t, "prune", "-manifest", shrunk, "-cache", cache)
	if code != 0 {
		t.Fatalf("prune dry run failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stderr, "streams: 2 entries") || !strings.Contains(stderr, "1 unreachable") {
		t.Errorf("dry run stream stats wrong: %s", stderr)
	}
	if !strings.Contains(stderr, "1 stream keys reachable") {
		t.Errorf("dry run reachable stream count wrong: %s", stderr)
	}
	if _, stderr, code = runCLI(t, "prune", "-manifest", shrunk, "-cache", cache, "-rm"); code != 0 {
		t.Fatalf("prune -rm failed (%d): %s", code, stderr)
	}
	_, stderr, code = runCLI(t, "prune", "-manifest", shrunk, "-cache", cache)
	if code != 0 || !strings.Contains(stderr, "streams: 1 entries") || !strings.Contains(stderr, "0 unreachable") {
		t.Errorf("post-rm dry run stream stats wrong (%d): %s", code, stderr)
	}
	// The surviving stream still answers a warm run from a cold result
	// cache.
	if _, stderr, code := runCLI(t, "run", "-manifest", shrunk, "-cache", t.TempDir(), "-train-workers", "1"); code != 0 {
		t.Fatalf("post-prune run failed: %s", stderr)
	}
}

// TestTrainWorkersIsExecutionKnob checks end to end that the
// parallelism flag never moves cache keys: a sweep run at -train-workers
// 8 is fully warm when rerun at -train-workers 1, and the merged bytes
// agree.
func TestTrainWorkersIsExecutionKnob(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a benchmark")
	}
	path := writeManifest(t, `{"benchmarks":["g721_decode"],"policies":["offline"]}`)
	cache := t.TempDir()
	stdout, stderr, code := runCLI(t, "run", "-manifest", path, "-cache", cache, "-train-workers", "8")
	if code != 0 {
		t.Fatalf("run failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stdout, `"executed":1`) {
		t.Errorf("cold run summary = %s, want 1 executed", stdout)
	}
	stdout, _, code = runCLI(t, "run", "-manifest", path, "-cache", cache, "-train-workers", "1")
	if code != 0 || !strings.Contains(stdout, `"executed":0`) {
		t.Errorf("warm rerun at different worker count = %s (code %d), want 0 executed", stdout, code)
	}
	if _, stderr, code := runCLI(t, "run", "-manifest", path, "-cache", cache, "-train-workers", "-2"); code == 0 {
		t.Errorf("negative -train-workers accepted: %s", stderr)
	}
}
