// Command mcdprof runs phase one (ATOM-style profiling) on a benchmark
// and reports the call tree and its long-running nodes.
//
// Usage:
//
//	mcdprof -bench epic_encode [-input train] [-scheme L+F+C+P] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/calltree"
	"repro/internal/profiler"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "gsm_decode", "benchmark name")
	inputName := flag.String("input", "train", "input set: train | ref")
	schemeName := flag.String("scheme", "L+F+C+P", "context scheme")
	verbose := flag.Bool("v", false, "dump every node")
	flag.Parse()

	b := workload.ByName(*bench)
	if b == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(1)
	}
	var scheme calltree.Scheme
	found := false
	for _, s := range calltree.Schemes() {
		if s.Name == *schemeName {
			scheme, found = s, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schemeName)
		os.Exit(1)
	}

	in, window := b.Input(*inputName)
	tree := profiler.Profile(b.Prog, in, window, scheme)

	fmt.Printf("benchmark:      %s (%s input, %d instructions)\n", b.Name(), *inputName, window)
	fmt.Printf("scheme:         %s\n", scheme.Name)
	fmt.Printf("tree nodes:     %d\n", tree.NumNodes())
	fmt.Printf("long-running:   %d (cutoff %d instructions/instance, exclusive)\n",
		tree.NumLongRunning(), calltree.LongRunningCutoff)
	fmt.Printf("tracked points: %d\n", len(tree.TrackedNodes()))
	fmt.Printf("distinct subs:  %d\n", len(tree.Subroutines()))
	fmt.Printf("lookup tables:  %d bytes\n", tree.LookupTableBytes())

	if *verbose {
		fmt.Println("\nlong-running nodes:")
		for _, n := range tree.LongRunning() {
			fmt.Printf("  %-60s  instances=%-6d avg-exclusive=%.0f\n",
				n.Path(), n.Instances, n.AvgExclusive())
		}
	}
}
