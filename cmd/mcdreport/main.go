// Command mcdreport regenerates the paper's tables and figures on the
// synthetic benchmark suite.
//
// Usage:
//
//	mcdreport [-only fig4,fig5,...] [-bench name1,name2] [-delta 2.0] [-parallel N]
//	          [-topology fine6] [-topologies paper4,sync1,fe-be2,fine6]
//	          [-only timing -trace spans.ndjson]
//
// Without -only it produces everything: Tables 1-4, Figures 4-12 and the
// MCD baseline-penalty analysis. The extra "topology" section
// (-only topology) is opt-in: it runs the baseline, offline and online
// policies under every topology named by -topologies and renders a
// slowdown/energy comparison table. -topology switches the machine model
// every other section simulates.
//
// With -cache, outcomes persist to a sweep cache directory shared with
// mcdsweep, including its columnar segment layer (DIR/segments): a warm
// report resolves its whole grid from a few segment reads, and output
// is byte-identical regardless of which cache layer answered.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	only := flag.String("only", "", "comma-separated subset: table1,table2,table3,table4,fig4..fig12,baseline,topology,timing")
	benches := flag.String("bench", "", "comma-separated benchmark subset (default: all 19)")
	delta := flag.Float64("delta", 0, "slowdown threshold delta in percent (default: calibrated)")
	parallel := flag.Int("parallel", 0, "worker parallelism (default GOMAXPROCS)")
	cache := flag.String("cache", "", "persistent sweep cache directory (optional)")
	topoName := flag.String("topology", "", "clock-domain topology for all sections (default: paper4)")
	topoList := flag.String("topologies", "", "comma-separated topologies for -only topology (default: all registered)")
	tracePath := flag.String("trace", "", "span NDJSON file for -only timing (a `mcdsweep run -trace` or /v1/sweeps/{id}/trace capture)")
	flag.Parse()

	topo, err := arch.TopologyByName(*topoName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcdreport:", err)
		os.Exit(1)
	}
	cfg := core.DefaultConfig()
	cfg.Sim.Topology = arch.CanonicalTopologyName(topo.Name)
	if *delta > 0 {
		cfg.DeltaPct = *delta
	}
	r := experiments.NewRunner(cfg)
	r.Parallel = *parallel
	r.CacheDir = *cache
	if *benches != "" {
		r.Names = strings.Split(*benches, ",")
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	out := os.Stdout
	emit := func(s string) { fmt.Fprintln(out, s) }

	if sel("table1") {
		emit(r.Table1())
	}
	if sel("table2") {
		emit(r.Table2())
	}
	if sel("fig4") {
		emit(r.Figure4())
	}
	if sel("fig5") {
		emit(r.Figure5())
	}
	if sel("fig6") {
		emit(r.Figure6())
	}
	if sel("fig7") {
		emit(r.Figure7())
	}
	if sel("fig8") {
		emit(r.Figure8())
	}
	if sel("fig9") {
		emit(r.Figure9())
	}
	if sel("fig10") || sel("fig11") {
		off, lf, on := r.Sweep()
		if sel("fig10") {
			emit(experiments.Figure10(off, lf, on))
		}
		if sel("fig11") {
			emit(experiments.Figure11(off, lf, on))
		}
	}
	if sel("fig12") {
		emit(r.Figure12())
	}
	if sel("table3") {
		emit(r.Table3())
	}
	if sel("table4") {
		emit(r.Table4())
	}
	if sel("baseline") {
		emit(r.BaselinePenalty())
	}
	// Opt-in only: the timing report reads a captured execution trace,
	// not the simulator, so it never rides along implicitly.
	if want["timing"] {
		if *tracePath == "" {
			fmt.Fprintln(os.Stderr, "mcdreport: -only timing requires -trace FILE")
			os.Exit(1)
		}
		if err := timingSection(out, *tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "mcdreport:", err)
			os.Exit(1)
		}
	}
	// Opt-in only: the cross-topology comparison simulates the suite
	// under every named topology, so it never rides along implicitly.
	if want["topology"] {
		var topos []string
		if *topoList != "" {
			topos = strings.Split(*topoList, ",")
		}
		table, err := r.TopologyTable(topos)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mcdreport:", err)
			os.Exit(1)
		}
		emit(table)
	}
}

// timingSection renders the per-phase timing table from a span capture —
// the same aggregation `mcdsweep timing` prints.
func timingSection(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := obs.ReadSpans(f)
	if err != nil {
		return err
	}
	return obs.Aggregate(spans).WriteTable(w)
}
