// Command mcdperf runs the repository's performance scenarios and emits
// machine-readable benchmark reports (see DESIGN.md section 7).
//
// Usage:
//
//	mcdperf [-scenarios a,b] [-out BENCH.json] [-label PR2]
//	mcdperf -compare perf/baseline.json [-threshold 0.15] [-scenarios a,b]
//	mcdperf -list
//
// With -compare it measures the selected scenarios, diffs them against
// the baseline report and exits nonzero when any scenario regresses more
// than the threshold — the CI perf gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/perf"
)

func main() {
	scenarios := flag.String("scenarios", "", "comma-separated scenario subset (default: all)")
	out := flag.String("out", "", "write the JSON report to this file (default: stdout)")
	label := flag.String("label", "", "free-form label recorded in the report (e.g. PR2)")
	compare := flag.String("compare", "", "baseline report to compare against; exits 1 on regression")
	threshold := flag.Float64("threshold", 0.15, "tolerated fractional slowdown vs the baseline")
	allocsOnly := flag.Bool("allocs-only", false, "gate only on allocations/instruction (hardware-independent); wall ratios are still reported")
	list := flag.Bool("list", false, "list scenarios and exit")
	flag.Parse()

	if *list {
		for _, s := range perf.Scenarios() {
			fmt.Printf("%-18s %s\n", s.Name, s.Desc)
		}
		return
	}

	var names []string
	if *scenarios != "" {
		for _, n := range strings.Split(*scenarios, ",") {
			names = append(names, strings.TrimSpace(n))
		}
	}

	rep, err := perf.RunAll(names, *label)
	if err != nil {
		fatal(err)
	}

	if *compare != "" {
		base, err := perf.Load(*compare)
		if err != nil {
			fatal(err)
		}
		if len(names) > 0 {
			// Gate only the scenarios that were measured: a subset run
			// must not fail because the baseline also knows others.
			var kept []perf.Result
			for _, s := range base.Scenarios {
				if rep.Find(s.Name) != nil {
					kept = append(kept, s)
				}
			}
			base.Scenarios = kept
		}
		deltas, err := perf.CompareOpts(base, rep, *threshold, !*allocsOnly)
		if err != nil {
			fatal(err)
		}
		fmt.Print(perf.FormatDeltas(deltas))
		if reg := perf.Regressions(deltas); len(reg) > 0 {
			// Persist the measurements before failing: the report is
			// most needed on exactly the runs that regress.
			if *out != "" {
				if err := rep.WriteFile(*out); err != nil {
					fmt.Fprintln(os.Stderr, "mcdperf:", err)
				}
			}
			fmt.Fprintf(os.Stderr, "mcdperf: %d scenario(s) regressed beyond %.0f%%\n",
				len(reg), *threshold*100)
			os.Exit(1)
		}
	}

	if *out != "" {
		if err := rep.WriteFile(*out); err != nil {
			fatal(err)
		}
	} else if *compare == "" {
		b, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(b))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mcdperf:", err)
	os.Exit(1)
}
