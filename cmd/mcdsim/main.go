// Command mcdsim runs one benchmark under one control policy on the MCD
// simulator and prints the run metrics.
//
// Usage:
//
//	mcdsim -bench gsm_decode [-policy baseline|offline|online|global|profile]
//	       [-scheme L+F] [-input ref] [-delta 1.75]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/calltree"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "gsm_decode", "benchmark name (see mcdreport -only table2)")
	policy := flag.String("policy", "profile", "baseline | offline | online | global | profile")
	schemeName := flag.String("scheme", "L+F", "context scheme for -policy profile")
	inputName := flag.String("input", "ref", "input set: train | ref")
	delta := flag.Float64("delta", 0, "slowdown threshold delta (percent)")
	topoName := flag.String("topology", "", "clock-domain topology (default: paper4; see arch.TopologyNames)")
	flag.Parse()

	b := workload.ByName(*bench)
	if b == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q; available: %v\n", *bench, workload.Names())
		os.Exit(1)
	}
	topo, err := arch.TopologyByName(*topoName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcdsim:", err)
		os.Exit(1)
	}
	cfg := core.DefaultConfig()
	cfg.Sim.Topology = arch.CanonicalTopologyName(topo.Name)
	if *delta > 0 {
		cfg.DeltaPct = *delta
	}
	in, window := b.Input(*inputName)

	base := core.RunBaseline(cfg, b.Prog, in, window)
	var res sim.Result
	switch *policy {
	case "baseline":
		res = base
	case "offline":
		res, _ = core.RunOffline(cfg, b.Prog, in, window)
	case "online":
		res = core.RunOnline(cfg, b.Prog, in, window)
	case "global":
		single := core.RunSingleClock(cfg, b.Prog, in, window, cfg.Sim.BaseMHz)
		off, _ := core.RunOffline(cfg, b.Prog, in, window)
		mhz := control.GlobalDVSMHz(single.TimePs, off.TimePs)
		fmt.Printf("global DVS frequency: %d MHz\n", mhz)
		res = core.RunSingleClock(cfg, b.Prog, in, window, mhz)
	case "profile":
		var scheme calltree.Scheme
		found := false
		for _, s := range calltree.Schemes() {
			if s.Name == *schemeName {
				scheme, found = s, true
				break
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schemeName)
			os.Exit(1)
		}
		prof := core.Train(cfg, b.Prog, b.Train, b.TrainWindow, scheme)
		var st core.EditStats
		res, st = core.RunEdited(cfg, b.Prog, in, window, prof.Plan, false)
		fmt.Printf("instrumentation: %d reconfig execs, %d total execs, %.3f%% overhead\n",
			st.DynReconfig, st.DynInstr, st.OverheadPct)
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(1)
	}

	fmt.Printf("benchmark:   %s (%s input, %d instructions)\n", b.Name(), *inputName, window)
	fmt.Printf("policy:      %s\n", *policy)
	if topo.Name != arch.DefaultName {
		fmt.Printf("topology:    %s (%d domains)\n", topo.Name, topo.NumDomains())
	}
	fmt.Printf("time:        %.3f us\n", float64(res.TimePs)/1e6)
	fmt.Printf("energy:      %.3f uJ\n", res.EnergyPJ/1e6)
	fmt.Printf("IPC@1GHz:    %.3f\n", res.IPCAt(1000))
	for i := 0; i < topo.NumScalable() && i < len(res.AvgMHz); i++ {
		fmt.Printf("avg %-9s %.0f MHz\n", topo.Spec(arch.Domain(i)).Name+":", res.AvgMHz[i])
	}
	if *policy != "baseline" {
		d := stats.Vs(res, base)
		fmt.Printf("vs baseline: %s\n", d)
	}
	fmt.Printf("sync:        %d crossings, %d penalties\n", res.SyncCrossings, res.SyncPenalties)
	fmt.Printf("bpred:       %.2f%% mispredict\n", res.MispredictRate*100)
	fmt.Printf("caches:      IL1 %.2f%%  DL1 %.2f%%  L2 %.2f%% miss\n",
		res.IL1MissRate*100, res.DL1MissRate*100, res.L2MissRate*100)
}
