package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/sweep"
)

// TestMain lets the test binary impersonate mcdworker (the reexec style
// of cmd/mcdserved/main_test.go): with the marker set, run main() with
// the test binary's arguments, so the fault-injection test below drives
// real worker processes — flag parsing, signal handling and exit codes
// included.
func TestMain(m *testing.M) {
	if os.Getenv("MCDWORKER_REEXEC") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// worker is one reexec'd mcdworker under test.
type worker struct {
	cmd    *exec.Cmd
	stderr *bytes.Buffer
}

func startWorker(t *testing.T, serverURL, name string) *worker {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-server", serverURL, "-name", name, "-cache", t.TempDir())
	cmd.Env = append(os.Environ(), "MCDWORKER_REEXEC=1")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	w := &worker{cmd: cmd, stderr: &stderr}
	t.Cleanup(func() {
		if w.cmd.ProcessState == nil {
			w.cmd.Process.Kill()
			w.cmd.Wait()
		}
	})
	return w
}

// metricValue scrapes one Prometheus series (full name, labels
// included) off the coordinator's /metrics.
func metricValue(t *testing.T, baseURL, series string) float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	for _, line := range strings.Split(body.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: %v", series, err)
			}
			return v
		}
	}
	return -1 // absent
}

// TestFleetFaultInjection is the end-to-end lease-protocol test: a
// coordinator and two real mcdworker processes run the CI smoke grid,
// one worker is SIGKILLed mid-lease, and the run must still converge —
// the orphaned anchor group is expired and reassigned, every job
// completes, each profile is trained (persisted to the coordinator's
// artifact store) exactly once fleet-wide, and the merged results are
// byte-identical to a single-node run of the same manifest.
func TestFleetFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("real-simulation fleet test (tens of seconds); skipped with -short")
	}

	m := sweep.Manifest{
		Name:       "fault-injection",
		Benchmarks: []string{"adpcm_decode", "gzip", "mcf"},
		Policies:   []string{"baseline", "single_clock", "online", "offline", "global", "scheme"},
		Schemes:    []string{"L+F"},
	}
	manifest, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	jobs, verr := sweep.ValidateManifest(&m)
	if verr != nil {
		t.Fatal(verr)
	}
	const wantTrainings = 6 // per bench: one off-line reference profile + one L+F scheme profile

	// The single-node reference runs concurrently in-process; its merge
	// bytes are the identity baseline the fleet must reproduce.
	var refBytes []byte
	var refErr error
	var refWG sync.WaitGroup
	refWG.Add(1)
	go func() {
		defer refWG.Done()
		dir := t.TempDir()
		eng := sweep.New(cfg)
		eng.Cache = &sweep.Cache{Dir: dir}
		eng.Artifacts = sweep.ArtifactStore(dir)
		if _, _, err := eng.Run(context.Background(), jobs); err != nil {
			refErr = err
			return
		}
		refBytes, refErr = sweep.MergeBytes(cfg, jobs, eng.Cache)
	}()

	srv := serve.NewServer(t.TempDir(), 2, 0)
	srv.EnableFleet(serve.FleetConfig{
		LeaseTTL:    1500 * time.Millisecond,
		Poll:        200 * time.Millisecond,
		MaxAttempts: 5,
	})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Drain(ctx)
	}()
	client := &serve.Client{BaseURL: ts.URL}

	victim := startWorker(t, ts.URL, "workerA")

	type result struct {
		st  *serve.Status
		err error
	}
	done := make(chan result, 1)
	go func() {
		st, err := client.RunManifest(manifest, nil)
		done <- result{st, err}
	}()

	// SIGKILL the victim the moment it holds a lease: the first lease is
	// cold (real simulation, hundreds of milliseconds at minimum), so
	// polling every 20ms is guaranteed to catch it mid-work.
	deadline := time.Now().Add(30 * time.Second)
	for metricValue(t, ts.URL, "mcdserved_fleet_leases_active") < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("workerA never took a lease; its log:\n%s", victim.stderr.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := victim.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	victim.cmd.Wait()
	t.Logf("killed workerA mid-lease; log so far:\n%s", victim.stderr.String())

	survivor := startWorker(t, ts.URL, "workerB")

	var res result
	select {
	case res = <-done:
	case <-time.After(3 * time.Minute):
		t.Fatalf("fleet sweep did not converge; survivor log:\n%s", survivor.stderr.String())
	}
	if res.err != nil {
		t.Fatalf("fleet sweep: %v", res.err)
	}
	if res.st.State != serve.StateComplete {
		t.Fatalf("state %s (%s)", res.st.State, res.st.Error)
	}
	if res.st.Summary.Errors != 0 {
		t.Fatalf("summary %+v: jobs failed despite reassignment", res.st.Summary)
	}

	// The orphaned lease must have expired and its group been reassigned.
	if v := metricValue(t, ts.URL, `mcdserved_fleet_leases_total{event="expired"}`); v < 1 {
		t.Fatalf("expired leases = %v, want >= 1", v)
	}
	if v := metricValue(t, ts.URL, `mcdserved_fleet_leases_total{event="reassigned"}`); v < 1 {
		t.Fatalf("reassigned leases = %v, want >= 1", v)
	}
	if v := metricValue(t, ts.URL, "mcdserved_fleet_workers"); v != 2 {
		t.Fatalf("registered workers = %v, want 2", v)
	}
	// Train-once, fleet-wide: the coordinator's artifact store holds one
	// write per unique profile, no matter how the kill and the
	// reassignment interleaved (re-uploads are deduplicated by key).
	if v := metricValue(t, ts.URL, "mcdserved_artifact_writes_total"); v != wantTrainings {
		t.Fatalf("coordinator artifact writes = %v, want %d (one per unique profile)", v, wantTrainings)
	}

	fleetBytes, err := client.Results(res.st.ID)
	if err != nil {
		t.Fatal(err)
	}
	refWG.Wait()
	if refErr != nil {
		t.Fatalf("single-node reference run: %v", refErr)
	}
	if !bytes.Equal(fleetBytes, refBytes) {
		t.Fatalf("fleet merge differs from single-node merge (%d vs %d bytes)", len(fleetBytes), len(refBytes))
	}

	// Graceful shutdown: SIGTERM must exit 0 after abandoning cleanly.
	if err := survivor.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := survivor.cmd.Wait(); err != nil {
		t.Fatalf("survivor exit: %v; log:\n%s", err, survivor.stderr.String())
	}
	if !strings.Contains(survivor.stderr.String(), "bye") {
		t.Fatalf("survivor did not say bye:\n%s", survivor.stderr.String())
	}
}

// TestWorkerRequiresServer covers the CLI contract without a fleet:
// missing -server is a usage error on stderr with exit status 1.
func TestWorkerRequiresServer(t *testing.T) {
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "MCDWORKER_REEXEC=1")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("exit: %v, want status 1", err)
	}
	if !strings.Contains(stderr.String(), "missing -server") {
		t.Fatalf("stderr %q does not explain the missing flag", stderr.String())
	}
}

// TestWorkerRefusesNonCoordinator asserts a worker pointed at a plain
// (non -fleet) daemon fails fast with the structured fleet_disabled
// error instead of retrying forever.
func TestWorkerRefusesNonCoordinator(t *testing.T) {
	srv := serve.NewServer(t.TempDir(), 1, 0)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cmd := exec.Command(os.Args[0], "-server", ts.URL, "-name", "lost")
	cmd.Env = append(os.Environ(), "MCDWORKER_REEXEC=1")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	err := cmd.Run()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 1 {
		t.Fatalf("exit: %v, want status 1; stderr:\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "fleet_disabled") {
		t.Fatalf("stderr %q does not carry fleet_disabled", stderr.String())
	}
}
