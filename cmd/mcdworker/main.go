// Command mcdworker is one member of an mcdserved fleet: it registers
// with a coordinator started with -fleet, pulls jobs one anchor group
// at a time over the versioned wire protocol (internal/serve/wire),
// runs them on the local sweep engine, heartbeats its lease while
// working, and syncs the produced result-cache and artifact-store
// entries back to the coordinator by content-addressed key.
//
// Usage:
//
//	mcdworker -server URL [-name LABEL] [-cache DIR] [-parallel K] [-train-workers P]
//	          [-trace N] [-pprof HOST:PORT]
//
// Because a lease is always a whole anchor group (every job that
// resolves or feeds one training), each (benchmark, scheme, input)
// profile is trained exactly once fleet-wide, and the entries a worker
// uploads are byte-identical to what a single-node run would have
// written.
//
// On SIGTERM/SIGINT the worker exits cleanly after abandoning its
// in-flight lease (the coordinator's heartbeat expiry reassigns the
// group). Exit status is 0 on graceful shutdown, 1 when the coordinator
// stays unreachable past the retry budget.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served only when -pprof is set
	"os"
	"os/signal"
	"syscall"

	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mcdworker:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "mcdworker: bye")
}

func run() error {
	server := flag.String("server", "", "coordinator base URL, e.g. http://127.0.0.1:8337 (required)")
	name := flag.String("name", "", "worker label for coordinator logs and metrics (default hostname)")
	cacheDir := flag.String("cache", "", "local result-cache directory (default a temporary directory, removed on exit)")
	parallel := flag.Int("parallel", 0, "per-lease execution parallelism (default GOMAXPROCS)")
	trainWorkers := flag.Int("train-workers", 0, "intra-job training parallelism — worker-local, leases never carry the knob; default GOMAXPROCS; results are bit-identical at every setting")
	traceCap := flag.Int("trace", 0, "span-trace ring capacity: >0 traces execution and ships each lease's spans with its completion report; 0 keeps tracing off")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6061); empty keeps the profiler off")
	flag.Parse()

	if *server == "" {
		return fmt.Errorf("missing -server")
	}
	if *trainWorkers < 0 {
		return fmt.Errorf("-train-workers must be >= 0")
	}
	if *traceCap < 0 {
		return fmt.Errorf("-trace must be >= 0")
	}
	if *name == "" {
		if hn, err := os.Hostname(); err == nil {
			*name = hn
		}
	}
	dir := *cacheDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "mcdworker-cache-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if *pprofAddr != "" {
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof: %w", err)
		}
		fmt.Fprintf(os.Stderr, "mcdworker: pprof on http://%s/debug/pprof/\n", ln.Addr())
		ps := &http.Server{Handler: http.DefaultServeMux}
		go ps.Serve(ln)
		defer ps.Close()
	}

	w := &serve.Worker{
		Server:       *server,
		Name:         *name,
		CacheDir:     dir,
		Workers:      *parallel,
		TrainWorkers: *trainWorkers,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "mcdworker: "+format+"\n", args...)
		},
	}
	if *traceCap > 0 {
		w.Trace = obs.NewTracer(*traceCap)
	}
	return w.Run(ctx)
}
