// Command mcdtrain runs the full training pipeline (profile, shake,
// threshold, edit) on a benchmark's training input and dumps the chosen
// per-node frequencies and the edit plan summary. Training resolves
// through the sweep engine's profile layers: with -artifacts set, a
// previously trained profile is loaded from the content-addressed
// artifact store instead of retraining, and a fresh training is
// persisted there for every later consumer (sweeps, reports, other
// machines sharing the directory).
//
// Usage:
//
//	mcdtrain -bench applu [-scheme L+F] [-delta 1.75] [-artifacts DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/arch"
	"repro/internal/artifact"
	"repro/internal/core"
	"repro/internal/edit"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func main() {
	bench := flag.String("bench", "gsm_decode", "benchmark name")
	schemeName := flag.String("scheme", "L+F", "context scheme")
	delta := flag.Float64("delta", 0, "slowdown threshold delta (percent)")
	artifactDir := flag.String("artifacts", "", "artifact store directory (reuse/persist trained profiles)")
	topoName := flag.String("topology", "", "clock-domain topology (default: paper4)")
	flag.Parse()

	b := workload.ByName(*bench)
	if b == nil {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q\n", *bench)
		os.Exit(1)
	}
	scheme, found := sweep.SchemeByName(*schemeName)
	if !found {
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schemeName)
		os.Exit(1)
	}
	topo, err := arch.TopologyByName(*topoName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcdtrain:", err)
		os.Exit(1)
	}

	cfg := core.DefaultConfig()
	cfg.Sim.Topology = arch.CanonicalTopologyName(topo.Name)
	if *delta > 0 {
		cfg.DeltaPct = *delta
	}
	eng := sweep.New(cfg)
	if *artifactDir != "" {
		eng.Artifacts = &artifact.Store{Dir: *artifactDir}
	}
	prof, err := eng.Profile(sweep.ProfileSpec{Bench: b.Name(), Scheme: scheme.Name})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcdtrain:", err)
		os.Exit(1)
	}

	rc, instr := prof.Plan.StaticPoints()
	fmt.Printf("benchmark:       %s (training window %d)\n", b.Name(), b.TrainWindow)
	fmt.Printf("scheme:          %s   delta: %.2f%%\n", scheme.Name, cfg.DeltaPct)
	fmt.Printf("tree:            %d nodes, %d long-running\n",
		prof.Tree.NumNodes(), prof.Tree.NumLongRunning())
	fmt.Printf("static points:   %d reconfiguration, %d instrumented\n", rc, instr)
	fmt.Printf("table footprint: %d bytes\n", prof.Plan.LookupTableBytes())

	fmt.Println("\nchosen frequencies (MHz):")
	header := fmt.Sprintf("  %-52s", "node")
	for d := 0; d < topo.NumScalable(); d++ {
		header += fmt.Sprintf(" %9s", topo.Spec(arch.Domain(d)).Name)
	}
	fmt.Println(header)
	printRow := func(label string, f edit.Freqs) {
		line := fmt.Sprintf("  %-52s", label)
		for _, mhz := range f {
			line += fmt.Sprintf(" %9d", mhz)
		}
		fmt.Println(line)
	}
	type row struct {
		label string
		f     edit.Freqs
	}
	var rows []row
	if scheme.Path {
		for n, f := range prof.Plan.NodeFreqs {
			rows = append(rows, row{n.Path(), f})
		}
	} else {
		for k, f := range prof.Plan.StaticFreqs {
			rows = append(rows, row{fmt.Sprintf("%s%d", k.Kind, k.ID), f})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].label < rows[j].label })
	for _, r := range rows {
		printRow(r.label, r.f)
	}
}
