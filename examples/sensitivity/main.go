// Sensitivity: sweep the slowdown threshold delta on a few benchmarks
// (the data behind Figures 10 and 11), running the whole grid through
// the sharded sweep engine. Training happens once per benchmark; each
// delta point replans the frequencies from the memoized shaken
// histograms and reruns the production input. With -cache set, results
// persist across invocations and a second run does zero simulation
// work — and trained profiles land in the artifact store under the
// cache directory, so even a grid of entirely new deltas replans from
// stored histograms instead of retraining.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/calltree"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/sweep"
)

func main() {
	cacheDir := flag.String("cache", "", "persistent sweep cache directory (optional)")
	flag.Parse()

	benches := []string{"gsm_decode", "mcf", "swim"}
	deltas := []float64{0.5, 1, 2, 4, 8}

	eng := sweep.New(core.DefaultConfig())
	if *cacheDir != "" {
		eng.Cache = &sweep.Cache{Dir: *cacheDir}
		eng.Artifacts = sweep.ArtifactStore(*cacheDir)
	}

	// One baseline job per benchmark, then the full (benchmark x delta)
	// L+F grid; the engine fans the whole batch out over its worker pool.
	var jobs []sweep.Job
	for _, name := range benches {
		jobs = append(jobs, sweep.Job{Bench: name, Policy: sweep.PolicyBaseline})
		for _, d := range deltas {
			jobs = append(jobs, sweep.Job{Bench: name, Policy: sweep.PolicyScheme,
				Scheme: calltree.LF.Name, Delta: d})
		}
	}
	outs, sum, err := eng.Run(context.Background(), jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sensitivity:", err)
		os.Exit(1)
	}

	i := 0
	for _, name := range benches {
		base := outs[i].Res
		i++
		t := stats.NewTable("delta %", "slowdown %", "savings %", "ED improvement %")
		for _, d := range deltas {
			v := stats.Vs(outs[i].Res, base)
			t.Row(d, v.Slowdown, v.EnergySavings, v.EDImprovement)
			i++
		}
		fmt.Printf("%s: slowdown-threshold sweep (L+F)\n", name)
		fmt.Print(t)
		fmt.Println()
	}
	fmt.Printf("sweep summary: %s\n\n", sum)
	fmt.Println("Expected shape (paper, Figures 10-11): savings and energy-delay")
	fmt.Println("improvement grow roughly linearly with the tolerated slowdown for")
	fmt.Println("profile-based reconfiguration across this range.")
}
