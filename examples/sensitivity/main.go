// Sensitivity: sweep the slowdown threshold delta on a few benchmarks
// (the data behind Figures 10 and 11). Training happens once per
// benchmark; each delta point replans the frequencies from the cached
// shaken histograms and reruns the production input.
package main

import (
	"fmt"

	"repro/internal/calltree"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	cfg := core.DefaultConfig()
	benches := []string{"gsm_decode", "mcf", "swim"}
	deltas := []float64{0.5, 1, 2, 4, 8}

	for _, name := range benches {
		b := workload.ByName(name)
		base := core.RunBaseline(cfg, b.Prog, b.Ref, b.RefWindow)
		prof := core.Train(cfg, b.Prog, b.Train, b.TrainWindow, calltree.LF)

		t := stats.NewTable("delta %", "slowdown %", "savings %", "ED improvement %")
		for _, d := range deltas {
			plan := core.Replan(prof, d)
			res, _ := core.RunEdited(cfg, b.Prog, b.Ref, b.RefWindow, plan, false)
			v := stats.Vs(res, base)
			t.Row(d, v.Slowdown, v.EnergySavings, v.EDImprovement)
		}
		fmt.Printf("%s: slowdown-threshold sweep (L+F)\n", name)
		fmt.Print(t)
		fmt.Println()
	}
	fmt.Println("Expected shape (paper, Figures 10-11): savings and energy-delay")
	fmt.Println("improvement grow roughly linearly with the tolerated slowdown for")
	fmt.Println("profile-based reconfiguration across this range.")
}
