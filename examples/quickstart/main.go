// Quickstart: the complete profile-driven DVFS pipeline on one
// benchmark — train on the small input, edit the binary, run on the
// large input, and compare against the MCD baseline.
package main

import (
	"fmt"

	"repro/internal/calltree"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	// Pick a benchmark stand-in (gsm decode: integer-heavy MediaBench
	// codec) and the paper-calibrated configuration.
	b := workload.ByName("gsm_decode")
	cfg := core.DefaultConfig()

	// 1. Baseline: every domain at full speed.
	base := core.RunBaseline(cfg, b.Prog, b.Ref, b.RefWindow)
	fmt.Printf("baseline: %v\n", base)

	// 2. Train on the SMALL input (phases 1-4: profile, shake,
	//    threshold, edit) using the recommended L+F scheme.
	prof := core.Train(cfg, b.Prog, b.Train, b.TrainWindow, calltree.LF)
	fmt.Printf("training: %d call-tree nodes, %d long-running, %d reconfiguration points\n",
		prof.Tree.NumNodes(), prof.Tree.NumLongRunning(), len(prof.Plan.StaticFreqs))

	// 3. Run the edited binary on the LARGE input.
	res, st := core.RunEdited(cfg, b.Prog, b.Ref, b.RefWindow, prof.Plan, false)
	fmt.Printf("edited:   %v\n", res)
	fmt.Printf("          %d reconfigurations executed, %.3f%% instrumentation overhead\n",
		st.DynReconfig, st.OverheadPct)

	// 4. Compare.
	d := stats.Vs(res, base)
	fmt.Printf("result:   %.1f%% slowdown, %.1f%% energy savings, %.1f%% energy-delay improvement\n",
		d.Slowdown, d.EnergySavings, d.EDImprovement)
	fmt.Printf("domains:  front-end %.0f MHz, integer %.0f MHz, fp %.0f MHz, memory %.0f MHz (averages)\n",
		res.AvgMHz[0], res.AvgMHz[1], res.AvgMHz[2], res.AvgMHz[3])
}
