// Mediabench: the paper's motivating scenario — media codecs with
// distinct encode/decode phase behaviour. Compares all four policies
// (off-line oracle, on-line attack/decay, profile-driven L+F, global
// DVS) across the six MediaBench-style codec pairs.
package main

import (
	"fmt"

	"repro/internal/calltree"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

var codecs = []string{
	"adpcm_decode", "adpcm_encode",
	"epic_decode", "epic_encode",
	"g721_decode", "g721_encode",
	"gsm_decode", "gsm_encode",
	"jpeg_compress", "jpeg_decompress",
	"mpeg2_decode", "mpeg2_encode",
}

func main() {
	cfg := core.DefaultConfig()
	t := stats.NewTable("codec", "off-line ED%", "on-line ED%", "L+F ED%", "global ED%")

	var sums [4]float64
	for _, name := range codecs {
		b := workload.ByName(name)
		base := core.RunBaseline(cfg, b.Prog, b.Ref, b.RefWindow)
		single := core.RunSingleClock(cfg, b.Prog, b.Ref, b.RefWindow, cfg.Sim.BaseMHz)

		off, _ := core.RunOffline(cfg, b.Prog, b.Ref, b.RefWindow)
		on := core.RunOnline(cfg, b.Prog, b.Ref, b.RefWindow)
		prof := core.Train(cfg, b.Prog, b.Train, b.TrainWindow, calltree.LF)
		lf, _ := core.RunEdited(cfg, b.Prog, b.Ref, b.RefWindow, prof.Plan, false)
		mhz := control.GlobalDVSMHz(single.TimePs, off.TimePs)
		glob := core.RunSingleClock(cfg, b.Prog, b.Ref, b.RefWindow, mhz)

		eds := [4]float64{
			stats.Vs(off, base).EDImprovement,
			stats.Vs(on, base).EDImprovement,
			stats.Vs(lf, base).EDImprovement,
			stats.Vs(glob, base).EDImprovement,
		}
		for i, v := range eds {
			sums[i] += v
		}
		t.Row(name, eds[0], eds[1], eds[2], eds[3])
	}
	n := float64(len(codecs))
	t.Row("AVERAGE", sums[0]/n, sums[1]/n, sums[2]/n, sums[3]/n)

	fmt.Println("MediaBench-style energy-delay improvement vs MCD baseline")
	fmt.Print(t)
	fmt.Println("\nExpected shape (paper): profile-driven L+F tracks the off-line oracle,")
	fmt.Println("both clearly ahead of the on-line controller and global DVS.")
}
