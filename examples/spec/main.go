// Spec: loop-granularity reconfiguration on the scientific SPEC-style
// workloads (Section 4.2). applu and art contain subroutines with more
// than one long-running loop nest: reconfiguring at loop boundaries
// (L+F) changes frequencies far more often than at function boundaries
// only (F), trading a little extra overhead and slowdown for energy.
package main

import (
	"fmt"

	"repro/internal/calltree"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	cfg := core.DefaultConfig()
	t := stats.NewTable("benchmark", "scheme", "reconfigs", "slowdown %", "savings %", "ED %")

	for _, name := range []string{"applu", "art", "swim", "equake"} {
		b := workload.ByName(name)
		base := core.RunBaseline(cfg, b.Prog, b.Ref, b.RefWindow)
		for _, scheme := range []calltree.Scheme{calltree.LF, calltree.F} {
			prof := core.Train(cfg, b.Prog, b.Train, b.TrainWindow, scheme)
			res, st := core.RunEdited(cfg, b.Prog, b.Ref, b.RefWindow, prof.Plan, false)
			d := stats.Vs(res, base)
			t.Row(name, scheme.Name, st.DynReconfig, d.Slowdown, d.EnergySavings, d.EDImprovement)
		}
	}
	fmt.Println("Loop-boundary (L+F) vs function-boundary (F) reconfiguration")
	fmt.Print(t)
	fmt.Println("\nExpected shape (paper, Section 4.2): with loops, reconfiguration")
	fmt.Println("counts rise sharply on loop-nest codes like applu and art; energy")
	fmt.Println("savings improve at a small cost in performance degradation.")
}
