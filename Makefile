# Local targets mirror .github/workflows/ci.yml exactly: `make ci` runs
# the same steps in the same order as the workflow.

GO ?= go

.PHONY: all build fmt-check vet test race bench-smoke ci clean

all: build

build:
	$(GO) build ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short benchmark smoke run: one iteration of a headline figure on the
# small 5-benchmark subset plus the simulator throughput microbenchmark.
bench-smoke:
	$(GO) test -run '^$$' -bench '^(BenchmarkFigure4|BenchmarkSimulatorThroughput)$$' -benchtime 1x .

ci: fmt-check vet build race bench-smoke

clean:
	$(GO) clean ./...
