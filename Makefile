# Local targets mirror .github/workflows/ci.yml: `make ci` runs the
# same core steps in the same order as the workflow's checks job
# (staticcheck runs only when the binary is installed; CI installs it).

GO ?= go

.PHONY: all build fmt-check vet staticcheck test race bench-smoke perf perf-gate ci clean

all: build

build:
	$(GO) build ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

staticcheck:
	@if command -v staticcheck >/dev/null; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

test:
	$(GO) test ./...

# The experiments package simulates real report subsets; under -race on
# a small machine that can exceed go test's default 10-minute
# per-package timeout, so raise it (CI's multi-core runners finish well
# inside it either way).
race:
	$(GO) test -race -timeout 1800s ./...

# Short benchmark smoke run: one iteration of a headline figure on the
# small 5-benchmark subset plus the simulator throughput microbenchmark.
# Set MCD_SWEEP_CACHE to a directory to serve warm jobs from the sweep
# result cache (CI does).
bench-smoke:
	$(GO) test -run '^$$' -bench '^(BenchmarkFigure4|BenchmarkSimulatorThroughput)$$' -benchtime 1x .

# Run every perf scenario and write a machine-readable report (see
# DESIGN.md section 7). cmd/mcdperf builds with the committed PGO
# profile automatically.
perf:
	$(GO) run ./cmd/mcdperf -out BENCH_local.json
	@echo "wrote BENCH_local.json"

# The CI perf gate: measure the bench-smoke scenario and fail on >15%
# regression against the committed baseline.
perf-gate:
	$(GO) run ./cmd/mcdperf -scenarios bench-smoke -compare perf/baseline.json -threshold 0.15

ci: fmt-check vet staticcheck build race bench-smoke

clean:
	$(GO) clean ./...
