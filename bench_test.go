// Package repro's benchmark harness regenerates every paper table and
// figure (see DESIGN.md section 4 for the experiment index) and measures
// the cost of each pipeline stage. The figure benchmarks run on a small
// diverse subset by default so `go test -bench .` completes in minutes;
// `cmd/mcdreport` regenerates everything on the full 19-benchmark suite.
package repro

import (
	"os"
	"testing"

	"repro/internal/calltree"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/profiler"
	"repro/internal/shaker"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchSubset is a diverse 5-benchmark slice of the suite: integer
// codec, branchy compressor, memory-bound, FP stream, and the
// training-mismatch case. schemeSubset is the smaller slice used by the
// scheme-sensitivity and sweep benchmarks, which run every context
// scheme (or many operating points) per benchmark.
var (
	benchSubset  = []string{"adpcm_decode", "gzip", "mcf", "swim", "mpeg2_decode"}
	schemeSubset = []string{"adpcm_decode", "mcf", "mpeg2_decode"}
)

// Figure benchmarks share warmed runners: the first benchmark to touch a
// runner pays the simulation cost; later iterations measure the figure
// aggregation over the cached policy results, keeping the whole bench
// run inside the go test timeout.
var (
	headlineRunner *experiments.Runner
	schemeRunner   *experiments.Runner
)

func newRunner() *experiments.Runner {
	if headlineRunner == nil {
		headlineRunner = experiments.NewRunner(core.DefaultConfig())
		headlineRunner.Names = benchSubset
		headlineRunner.CacheDir = os.Getenv("MCD_SWEEP_CACHE")
	}
	return headlineRunner
}

func newSchemeRunner() *experiments.Runner {
	if schemeRunner == nil {
		schemeRunner = experiments.NewRunner(core.DefaultConfig())
		schemeRunner.Names = schemeSubset
		schemeRunner.CacheDir = os.Getenv("MCD_SWEEP_CACHE")
	}
	return schemeRunner
}

// --- Benchmarks regenerating the paper's figures and tables ---

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		s := r.Figure4()
		if len(s) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(newRunner().Figure5()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(newRunner().Figure6()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(newRunner().Figure7()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(newSchemeRunner().Figure8()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(newSchemeRunner().Figure9()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure10And11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newSchemeRunner()
		off, lf, on := r.Sweep()
		if len(experiments.Figure10(off, lf, on)) == 0 ||
			len(experiments.Figure11(off, lf, on)) == 0 {
			b.Fatal("empty figures")
		}
	}
}

func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(newSchemeRunner().Figure12()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newRunner()
		if len(r.Table3()) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(newRunner().Table4()) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkBaselinePenalty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(newRunner().BaselinePenalty()) == 0 {
			b.Fatal("empty output")
		}
	}
}

// --- Ablation benchmarks for DESIGN.md's called-out design choices ---

// BenchmarkAblationShakerDecay compares the shaker's threshold-decay
// schedule: a coarse schedule (0.7/pass) converges faster but
// distributes slack less evenly than the default 0.9.
func BenchmarkAblationShakerDecay(b *testing.B) {
	bench := workload.ByName("gsm_decode")
	for _, decay := range []float64{0.7, 0.9} {
		b.Run(formatFloat(decay), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Shaker.ThresholdDecay = decay
			for i := 0; i < b.N; i++ {
				prof := core.Train(cfg, bench.Prog, bench.Train, bench.TrainWindow, calltree.LF)
				res, _ := core.RunEdited(cfg, bench.Prog, bench.Ref, bench.RefWindow, prof.Plan, false)
				b.ReportMetric(res.EnergyPJ/1e6, "uJ")
			}
		})
	}
}

// BenchmarkAblationDAGSize compares dependence-DAG caps: smaller
// segments lose long-range slack information.
func BenchmarkAblationDAGSize(b *testing.B) {
	bench := workload.ByName("mcf")
	for _, events := range []int{10_000, 120_000} {
		b.Run(formatInt(events), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.MaxEvents = events
			for i := 0; i < b.N; i++ {
				prof := core.Train(cfg, bench.Prog, bench.Train, bench.TrainWindow, calltree.LF)
				res, _ := core.RunEdited(cfg, bench.Prog, bench.Ref, bench.RefWindow, prof.Plan, false)
				b.ReportMetric(res.EnergyPJ/1e6, "uJ")
			}
		})
	}
}

// BenchmarkAblationInstances compares how many dynamic instances per
// long-running node are shaken during training.
func BenchmarkAblationInstances(b *testing.B) {
	bench := workload.ByName("swim")
	for _, k := range []int{1, 4} {
		b.Run(formatInt(k), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.MaxInstances = k
			for i := 0; i < b.N; i++ {
				prof := core.Train(cfg, bench.Prog, bench.Train, bench.TrainWindow, calltree.LF)
				res, _ := core.RunEdited(cfg, bench.Prog, bench.Ref, bench.RefWindow, prof.Plan, false)
				b.ReportMetric(res.EnergyPJ/1e6, "uJ")
			}
		})
	}
}

// --- Microbenchmarks of the pipeline stages ---

func BenchmarkSimulatorThroughput(b *testing.B) {
	bb := isa.NewBuilder("simbench")
	main := bb.Subroutine("main")
	bb.SetBody(main, bb.Block(isa.Balanced, 1_000_000))
	p := bb.Finish(main)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := sim.New(sim.DefaultConfig())
		p.Walk(isa.Input{Name: "train"}, &isa.CountingConsumer{Inner: m, Budget: 200_000})
		m.Finalize()
	}
	b.ReportMetric(200_000*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

func BenchmarkStreamGenerator(b *testing.B) {
	bench := workload.ByName("gzip")
	var c nullConsumer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.Prog.Walk(bench.Train, &isa.CountingConsumer{Inner: &c, Budget: 200_000})
	}
	b.ReportMetric(200_000*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
}

type nullConsumer struct{}

func (nullConsumer) Instr(*isa.Instr) bool  { return true }
func (nullConsumer) Marker(isa.Marker) bool { return true }

func BenchmarkProfiler(b *testing.B) {
	bench := workload.ByName("gzip")
	for i := 0; i < b.N; i++ {
		tree := profiler.Profile(bench.Prog, bench.Train, bench.TrainWindow, calltree.LFCP)
		if tree.NumNodes() == 0 {
			b.Fatal("empty tree")
		}
	}
}

func BenchmarkShaker(b *testing.B) {
	// Build one representative segment via the collector.
	bench := workload.ByName("gsm_decode")
	tree := profiler.Profile(bench.Prog, bench.Train, bench.TrainWindow, calltree.LFCP)
	var seg *trace.Segment
	col := trace.NewCollector(tree, 1, 120_000, func(s *trace.Segment) {
		if seg == nil || len(s.Events) > len(seg.Events) {
			seg = s
		}
	})
	m := sim.New(sim.DefaultConfig())
	m.SetTracer(col)
	m.SetMarkerSink(col)
	bench.Prog.Walk(bench.Train, &isa.CountingConsumer{Inner: m, Budget: bench.TrainWindow})
	col.Close()
	if seg == nil {
		b.Fatal("no segment")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shaker.Run(seg, shaker.DefaultConfig())
	}
	b.ReportMetric(float64(len(seg.Events)), "events")
}

func BenchmarkTrainingPipeline(b *testing.B) {
	bench := workload.ByName("adpcm_decode")
	cfg := core.DefaultConfig()
	for i := 0; i < b.N; i++ {
		core.Train(cfg, bench.Prog, bench.Train, bench.TrainWindow, calltree.LF)
	}
}

func formatFloat(f float64) string { return "decay=" + trimFloat(f) }
func formatInt(n int) string {
	switch {
	case n >= 1000:
		return trimFloat(float64(n)/1000) + "k"
	default:
		return trimFloat(float64(n))
	}
}

func trimFloat(f float64) string {
	s := ""
	switch {
	case f == float64(int64(f)):
		s = itoa(int64(f))
	default:
		whole := int64(f)
		frac := int64((f - float64(whole)) * 10)
		s = itoa(whole) + "." + itoa(frac)
	}
	return s
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
